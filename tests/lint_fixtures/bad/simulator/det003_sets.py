"""Fixture: DET003 fires — hash-ordered set iteration and draining."""


def drain(channels):
    busy = {channel for channel in channels if channel.active}
    for channel in busy:
        yield channel
    for channel in list(busy):
        yield channel
    yield busy.pop()
