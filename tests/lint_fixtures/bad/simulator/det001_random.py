"""Fixture: DET001 fires — process-global random state."""

import random
from random import randint


def jitter():
    random.seed(42)
    return random.random() + randint(0, 3)
