"""Unit tests for the multi-lane virtual-channel wrapper (§4 extension)."""

import pytest

from repro.analysis import build_dependency_graph, is_acyclic
from repro.routing.multilane import MultiLane, with_lanes
from repro.routing.registry import make_algorithm
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_multiplies_vcs(self, torus4):
        wrapped = make_algorithm("ecubex3", torus4)
        assert wrapped.num_virtual_channels == 6
        assert wrapped.name == "ecubex3"

    def test_one_lane_returns_inner(self, torus4):
        inner = make_algorithm("ecube", torus4)
        assert with_lanes(inner, 1) is inner

    def test_registry_suffix_parsing(self, torus16):
        assert make_algorithm("ecubex4", torus16).num_virtual_channels == 8
        assert make_algorithm("nhopx2", torus16).num_virtual_channels == 18

    def test_registry_rejects_bad_base(self, torus4):
        with pytest.raises(ConfigurationError):
            make_algorithm("bogusx2", torus4)

    def test_zero_lanes_rejected(self, torus4):
        with pytest.raises(ConfigurationError):
            MultiLane(make_algorithm("ecube", torus4), 0)


class TestRouting:
    def test_candidates_expand_per_lane(self, torus4):
        inner = make_algorithm("ecube", torus4)
        wrapped = MultiLane(make_algorithm("ecube", torus4), 2)
        src, dst = 0, torus4.node((2, 1))
        inner_choices = inner.candidates(inner.new_state(src, dst), src, dst)
        wrapped_choices = wrapped.candidates(
            wrapped.new_state(src, dst), src, dst
        )
        assert len(wrapped_choices) == 2 * len(inner_choices)
        (link, vc_class), = inner_choices
        lanes = {c for l, c in wrapped_choices if l is link}
        assert lanes == {2 * vc_class, 2 * vc_class + 1}

    def test_advance_divides_lane_back_to_class(self, torus4):
        wrapped = MultiLane(make_algorithm("nhop", torus4), 2)
        src = torus4.node((1, 0))  # odd source: first hop is negative
        dst = torus4.node((0, 1))
        state = wrapped.new_state(src, dst)
        link, lane = wrapped.candidates(state, src, dst)[1]
        state = wrapped.advance(state, src, link, lane)
        # After a negative hop the inner class is 1 -> lanes {2, 3}.
        lanes = {c for _, c in wrapped.candidates(state, link.dst, dst)}
        assert lanes == {2, 3}

    def test_minimality_preserved(self, torus4):
        from repro.analysis.invariants import check_candidates_minimal

        wrapped = make_algorithm("nbcx2", torus4)
        for dst in (1, 5, 10, 15):
            assert check_candidates_minimal(wrapped, 0, dst) > 0


class TestDeadlockFreedom:
    @pytest.mark.parametrize("base", ["ecube", "nhop"])
    def test_wrapped_graph_stays_acyclic(self, base, torus4):
        wrapped = make_algorithm(f"{base}x2", torus4)
        assert is_acyclic(build_dependency_graph(wrapped))

    def test_end_to_end_simulation(self):
        from repro.experiments.runner import run_point
        from tests.conftest import tiny_config

        result = run_point(tiny_config(algorithm="ecubex2", seed=3))
        assert result.messages_delivered > 0
