"""Rng-draw parity between Engine._select and BatchEngine._select.

The strict batch backend replays the object engine's routing decisions
over mirror state (``owner_py`` / ``owned_py`` lists instead of VC /
channel objects).  Bit-identity of whole runs rests on one local
contract: for the same candidate set, occupancy and channel loads, both
selectors must pick the same candidate AND consume the random stream
identically — a ``randrange`` fires exactly when the final filtered set
(free candidates under "random", tied-for-least-multiplexed under
"least_multiplexed") has more than one entry, and never otherwise.

Hypothesis fuzzes synthetic candidate sets through both implementations
side by side.  The stubs mirror exactly the attributes each selector
reads (``vc.owner`` / ``channel.owned_count`` for the object engine,
``owner_py`` / ``owned_py`` lists for the batch mirror), so the test
pins the contract without building networks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.batch import BatchEngine
from repro.simulator.engine import Engine


class _RecordingRandom(random.Random):
    """random.Random that logs every randrange(n) argument."""

    def __init__(self, seed):
        super().__init__(seed)
        self.calls = []

    def randrange(self, *args, **kwargs):  # noqa: D102
        self.calls.append(args)
        return super().randrange(*args, **kwargs)


class _VCStub:
    __slots__ = ("owner",)

    def __init__(self, occupied):
        self.owner = object() if occupied else None


class _ChannelStub:
    __slots__ = ("owned_count",)

    def __init__(self, owned_count):
        self.owned_count = owned_count


class _ScratchStub:
    """Just the two scratch lists both selectors reuse."""

    def __init__(self):
        self._free_scratch = []
        self._best_scratch = []


class _LaneStub:
    def __init__(self, owner_py, owned_py):
        self.owner_py = owner_py
        self.owned_py = owned_py


# One fuzzed candidate: occupied? + owned_count of its channel.
_candidate = st.tuples(
    st.booleans(), st.integers(min_value=0, max_value=4)
)
_cases = st.tuples(
    st.lists(_candidate, min_size=1, max_size=6),
    st.sampled_from(["first", "random", "least_multiplexed"]),
    st.integers(min_value=0, max_value=2**16),
)


def _final_set_size(entries, policy):
    """Size of the set the selector tiebreaks over (0 = no pick)."""
    free = [entry for entry in entries if not entry[0]]
    if not free:
        return 0
    if policy == "first":
        return 1
    if policy == "random":
        return len(free)
    best_load = min(load for _, load in free)
    return sum(1 for _, load in free if load == best_load)


@given(case=_cases)
@settings(max_examples=300, deadline=None)
def test_select_parity_and_rng_contract(case):
    entries, policy, seed = case

    # Object-engine view: (vc, channel) with one channel per candidate.
    object_candidates = [
        (_VCStub(occupied), _ChannelStub(load))
        for occupied, load in entries
    ]
    # Batch mirror view: entry = (flat_vc, channel_index, vc_class,
    # link); indices 2/3 are never read by _select.
    owner_py = [0 if occupied else -1 for occupied, _ in entries]
    owned_py = [load for _, load in entries]
    batch_candidates = [
        (index, index, 0, None) for index in range(len(entries))
    ]

    rng_object = _RecordingRandom(seed)
    rng_batch = _RecordingRandom(seed)
    picked_object = Engine._select(
        _ScratchStub(), object_candidates, policy, rng_object
    )
    picked_batch = BatchEngine._select(
        _ScratchStub(),
        _LaneStub(owner_py, owned_py),
        batch_candidates,
        policy,
        rng_batch,
    )

    # Same decision, expressed in each backend's own currency.
    if picked_object is None:
        assert picked_batch is None
    else:
        assert picked_batch is not None
        assert picked_batch[0] == object_candidates.index(picked_object)

    # Identical rng consumption: same call count AND same arguments.
    assert rng_object.calls == rng_batch.calls

    # The draw-iff-ambiguous contract: randrange fires exactly when the
    # final filtered set holds >= 2 candidates.  A single-candidate
    # request never draws, whatever the policy.
    final = _final_set_size(entries, policy)
    expected_calls = (
        [(final,)] if final > 1 and len(entries) > 1 else []
    )
    assert rng_object.calls == expected_calls


@given(
    occupied=st.booleans(),
    policy=st.sampled_from(["first", "random", "least_multiplexed"]),
)
@settings(max_examples=20, deadline=None)
def test_single_candidate_never_draws(occupied, policy):
    """The len==1 early-out bypasses the rng in both backends."""
    rng_object = _RecordingRandom(7)
    rng_batch = _RecordingRandom(7)
    picked_object = Engine._select(
        _ScratchStub(),
        [(_VCStub(occupied), _ChannelStub(0))],
        policy,
        rng_object,
    )
    picked_batch = BatchEngine._select(
        _ScratchStub(),
        _LaneStub([0 if occupied else -1], [0]),
        [(0, 0, 0, None)],
        policy,
        rng_batch,
    )
    assert (picked_object is None) == occupied
    assert (picked_batch is None) == occupied
    assert rng_object.calls == [] and rng_batch.calls == []
