"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simulator.config import SimulationConfig
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


@pytest.fixture(scope="session")
def torus4() -> Torus:
    return Torus(4, 2)


@pytest.fixture(scope="session")
def torus6() -> Torus:
    return Torus(6, 2)


@pytest.fixture(scope="session")
def torus8() -> Torus:
    return Torus(8, 2)


@pytest.fixture(scope="session")
def torus16() -> Torus:
    """The paper's network: a 16-ary 2-cube."""
    return Torus(16, 2)


@pytest.fixture(scope="session")
def mesh4() -> Mesh:
    return Mesh(4, 2)


@pytest.fixture(scope="session")
def torus4_3d() -> Torus:
    return Torus(4, 3)


def tiny_config(**overrides) -> SimulationConfig:
    """A fast 4x4-torus configuration for engine tests."""
    defaults = {
        "radix": 4,
        "n_dims": 2,
        "algorithm": "ecube",
        "traffic": "uniform",
        "offered_load": 0.2,
        "message_length": 4,
        "warmup_cycles": 200,
        "sample_cycles": 300,
        "gap_cycles": 50,
        "min_samples": 3,
        "max_samples": 3,
        "seed": 7,
    }
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture
def make_tiny_config():
    return tiny_config
