"""The top-level package surface used by the README and examples."""

import pytest


class TestTopLevelImports:
    def test_eager_exports(self):
        import repro

        assert repro.ALGORITHM_NAMES[0] == "ecube"
        assert repro.Torus(4, 2).num_nodes == 16
        assert repro.Mesh(4, 2).num_nodes == 16
        assert callable(repro.make_algorithm)

    def test_lazy_exports_resolve(self):
        import repro

        assert repro.SimulationConfig().radix == 16
        assert callable(repro.run_point)

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_version(self):
        import repro

        assert repro.__version__

    def test_readme_quickstart_snippet(self):
        """The exact code shown in README.md must keep working."""
        from repro import SimulationConfig, run_point

        result = run_point(
            SimulationConfig(
                radix=4,
                n_dims=2,
                algorithm="nbc",
                traffic="uniform",
                offered_load=0.4,
                message_length=4,
                warmup_cycles=200,
                sample_cycles=200,
                max_samples=3,
            )
        )
        assert result.average_latency > 0
        assert result.achieved_utilization > 0


class TestDoctests:
    def test_registry_doctest(self):
        import doctest

        import repro.routing.registry as module

        failures, _ = doctest.testmod(module)
        assert failures == 0

    def test_coords_doctest(self):
        import doctest

        import repro.topology.coords as module

        failures, _ = doctest.testmod(module)
        assert failures == 0

    def test_ring_doctest(self):
        import doctest

        import repro.topology.ring as module

        failures, _ = doctest.testmod(module)
        assert failures == 0
