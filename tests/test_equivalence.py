"""Tests for :mod:`repro.analysis.equivalence`.

The dual criterion is the load-bearing logic: a metric is discrepant
only when the strict/relaxed means differ practically (beyond
``rel_tol``) AND statistically (beyond ``z`` Welch standard errors).
These tests pin each arm of the criterion with hand-built samples, then
run one real (tiny) point through ``compare_point`` to check the
harness wiring: same seeds, both identity modes, all metrics reported.
"""

import pytest

from repro.analysis.equivalence import (
    SUITE_ALGORITHMS,
    SUITE_TOPOLOGIES,
    compare_metric,
    compare_point,
    main as equivalence_main,
    run_suite,
)
from tests.conftest import tiny_config


class TestCompareMetric:
    def test_identical_samples_pass(self):
        samples = [1.0, 1.1, 0.9, 1.05]
        cmp = compare_metric("m", samples, list(samples), 0.05, 3.0)
        assert cmp.passed
        assert cmp.rel_diff == 0.0
        assert cmp.mean_strict == cmp.mean_relaxed

    def test_large_confident_difference_fails(self):
        strict = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98]
        relaxed = [2.0, 2.01, 1.99, 2.0, 2.02, 1.98]
        cmp = compare_metric("m", strict, relaxed, 0.05, 3.0)
        assert not cmp.passed
        assert cmp.rel_diff == pytest.approx(1.0, rel=0.05)

    def test_practical_but_not_statistical_passes(self):
        # Means differ by ~50% but the samples are so noisy that the
        # difference sits within z standard errors: seed noise.
        strict = [0.1, 2.0, 0.2, 1.9]
        relaxed = [1.8, 0.3, 1.7, 0.1]
        cmp = compare_metric("m", strict, relaxed, 0.05, 3.0)
        assert cmp.passed

    def test_statistical_but_not_practical_passes(self):
        # Tiny (0.1%) offset measured with near-zero variance: highly
        # confident, practically immaterial.
        strict = [1.0, 1.0, 1.0, 1.0]
        relaxed = [1.001, 1.001, 1.001, 1.001]
        cmp = compare_metric("m", strict, relaxed, 0.05, 3.0)
        assert cmp.rel_diff == pytest.approx(0.001, rel=1e-6)
        assert cmp.passed

    def test_zero_mean_uses_absolute_floor(self):
        # A metric that is exactly zero under strict must tolerate a
        # relaxed value judged against the floor, not against 0.
        cmp = compare_metric(
            "m", [0.0, 0.0, 0.0], [0.0, 0.0, 0.0], 0.05, 3.0
        )
        assert cmp.passed
        assert cmp.rel_diff == 0.0

    def test_single_sample_has_zero_variance(self):
        # n=1 gives se=0: any practical difference is then confident,
        # so the criterion degrades to the practical arm alone.
        bad = compare_metric("m", [1.0], [2.0], 0.05, 3.0)
        assert not bad.passed
        good = compare_metric("m", [1.0], [1.01], 0.05, 3.0)
        assert good.passed

    def test_describe_marks_verdict(self):
        good = compare_metric("lat", [1.0, 1.0], [1.0, 1.0], 0.05, 3.0)
        assert good.describe().startswith("[ok ]")
        bad = compare_metric("lat", [1.0, 1.0], [9.0, 9.0], 0.05, 3.0)
        assert bad.describe().startswith("[FAIL]")


class TestSuiteConstants:
    def test_suite_covers_every_algorithm_and_topology(self):
        assert set(SUITE_ALGORITHMS) == {
            "ecube", "2pn", "nbc", "nhop", "nlast", "phop"
        }
        assert set(SUITE_TOPOLOGIES) == {"mesh", "torus"}


class TestComparePoint:
    def test_tiny_point_reports_all_metrics(self):
        config = tiny_config(
            algorithm="nbc",
            offered_load=0.3,
            flow_control="conservative",
            backend="batch",
        )
        # rel_tol is opened up on this wiring test: on a 4x4 network
        # the mean wait is ~1.2 cycles, so the relaxed mode's small
        # absolute wait offset (see docs/performance.md, "identity
        # modes") is amplified in relative terms.  The publication
        # check is the radix-8 suite (repro-equivalence), where the
        # offset sits well inside the 5% gate.
        report = compare_point(
            config, seeds=[11, 12, 13, 14], rel_tol=0.25
        )
        assert report.algorithm == "nbc"
        assert report.num_seeds == 4
        names = {metric.name for metric in report.metrics}
        assert {
            "average_latency",
            "average_wait",
            "achieved_utilization",
            "delivered_throughput",
            "messages_delivered",
        } <= names
        assert any(name.startswith("vc_share_") for name in names)
        # The real relaxed mode must be equivalent to strict here; a
        # failure on this tiny point is a genuine kernel regression.
        assert report.passed, [
            metric.describe() for metric in report.failures
        ]

    def test_cli_smoke_single_point(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        code = equivalence_main(
            [
                "--smoke",
                "--seeds", "3",
                "--algorithms", "ecube",
                "--topologies", "torus",
                "--json", out,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "1/1 points passed" in captured.err
        import json

        payload = json.loads(open(out).read())
        assert payload[0]["algorithm"] == "ecube"
        assert all(
            metric["passed"] for metric in payload[0]["metrics"]
        )


def test_run_suite_progress_callback():
    lines = []
    reports = run_suite(
        algorithms=["ecube"],
        topologies=["torus"],
        num_seeds=2,
        radix=4,
        offered_load=0.2,
        message_length=4,
        samples=2,
        warmup_cycles=150,
        sample_cycles=200,
        progress=lines.append,
    )
    assert len(reports) == 1
    assert lines and "torus/ecube" in lines[0]
    assert reports[0].passed
