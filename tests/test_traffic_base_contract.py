"""Contract tests for the TrafficPattern base machinery."""

import random

import pytest

from repro.topology.torus import Torus
from repro.traffic.base import TrafficPattern, UniformOverSetPattern
from repro.traffic.registry import available_patterns, make_traffic
from repro.util.errors import ConfigurationError


class _TwoTargets(UniformOverSetPattern):
    """Every node sends to nodes 1 and 2 (unless it is one of them)."""

    name = "two-targets"

    def candidate_destinations(self, src):
        return [dst for dst in (1, 2) if dst != src]


class _Silent(TrafficPattern):
    """A pattern that never generates messages."""

    name = "silent"

    def sample_destination(self, src, rng):
        return None

    def destination_distribution(self, src):
        return {}


class TestUniformOverSetPattern:
    @pytest.fixture
    def pattern(self, torus4):
        return _TwoTargets(torus4)

    def test_sampling_stays_in_set(self, pattern):
        rng = random.Random(0)
        for _ in range(50):
            assert pattern.sample_destination(5, rng) in (1, 2)

    def test_distribution_matches_set(self, pattern):
        assert pattern.destination_distribution(5) == {1: 0.5, 2: 0.5}
        assert pattern.destination_distribution(1) == {2: 1.0}

    def test_weights_derive_from_distribution(self, pattern, torus4):
        weights = pattern.hop_class_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert pattern.mean_distance() == pytest.approx(
            sum(h * w for h, w in weights.items())
        )


class TestDegeneratePatterns:
    def test_silent_pattern_has_empty_analytics(self, torus4):
        pattern = _Silent(torus4)
        assert pattern.hop_class_weights() == {}
        assert pattern.mean_distance() == 0.0

    def test_weights_are_cached(self, torus4):
        pattern = _TwoTargets(torus4)
        first = pattern.hop_class_weights()
        second = pattern.hop_class_weights()
        assert first == second
        first[99] = 1.0  # the returned dict is a copy
        assert 99 not in pattern.hop_class_weights()


class TestRegistry:
    def test_all_registered_patterns_constructible(self, torus16):
        for name in available_patterns():
            pattern = make_traffic(name, torus16)
            assert pattern.name == name

    def test_unknown_pattern_raises(self, torus4):
        with pytest.raises(ConfigurationError, match="unknown traffic"):
            make_traffic("rush-hour", torus4)

    def test_options_forwarded(self, torus16):
        pattern = make_traffic("local", torus16, radius=2)
        assert pattern.radius == 2

    def test_bad_option_surfaces(self, torus4):
        with pytest.raises(TypeError):
            make_traffic("uniform", torus4, radius=2)
