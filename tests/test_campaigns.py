"""Tests for :mod:`repro.campaigns`: specs, store, orchestrator, CLI.

The contract of the campaign layer:

* a :class:`CampaignSpec` expands its grid in a fixed, documented order
  and round-trips through JSON;
* the :class:`ResultStore` is content-addressed and shared across
  campaigns — a point simulated once is **never** simulated again, by
  any campaign that expands to the same config (asserted by booby-
  trapping the engine workers), and what it serves is bit-identical to
  a fresh run;
* collision hygiene: the store never serves a result for a config it
  was not simulated from, and refuses to pair one key with two configs;
* exports are deterministic and fail loudly on missing points;
* the ``repro-campaign`` CLI wires it all together.
"""

import dataclasses
import io
import json

import pytest

from repro.campaigns.cli import main as campaign_main
from repro.campaigns.export import (
    IncompleteCampaignError,
    collect,
    format_campaign_tables,
    grid_series,
    write_campaign_csv,
)
from repro.campaigns.identity import (
    campaign_signature,
    config_key,
    config_record_dict,
    point_key,
    result_key,
)
from repro.campaigns.orchestrator import run_campaign
from repro.campaigns.spec import (
    CampaignSpec,
    TrafficSpec,
    format_topology,
    grid_label,
    parse_topology,
)
from repro.campaigns.store import (
    STORE_VERSION,
    ResultStore,
    StoreIntegrityError,
    StoreWarning,
)
from repro.experiments import paper_figures
from repro.experiments.parallel import run_sweep_points
from repro.experiments.runner import run_point
from repro.experiments.sweep import PAPER_LOADS
from repro.util.errors import ConfigurationError
from tests.conftest import tiny_config

#: Shared (non-grid) config fields matching tests.conftest.tiny_config,
#: so campaign points stay fast 4x4-torus simulations.
TINY_BASE = {
    "message_length": 4,
    "warmup_cycles": 200,
    "sample_cycles": 300,
    "gap_cycles": 50,
    "min_samples": 3,
    "max_samples": 3,
}


def tiny_spec(
    name="tiny",
    algorithms=("ecube",),
    loads=(0.2,),
    seeds=(7,),
    **kwargs,
):
    """A fast campaign over the same 4x4 torus tiny_config uses."""
    return CampaignSpec(
        name=name,
        algorithms=tuple(algorithms),
        loads=tuple(loads),
        seeds=tuple(seeds),
        topologies=("torus:4x2",),
        base=dict(TINY_BASE),
        **kwargs,
    )


def boobytrap_workers(monkeypatch):
    """Make any engine invocation fail the test (cache-hit assertions)."""

    def boom(arg):
        raise AssertionError(f"engine invoked for {arg!r}")

    monkeypatch.setattr(
        "repro.experiments.parallel._run_point_worker", boom
    )
    monkeypatch.setattr(
        "repro.experiments.parallel._run_batch_worker", boom
    )


class TestTopologyAndTraffic:
    def test_parse_topology_roundtrip(self):
        assert parse_topology("torus:16x2") == ("torus", 16, 2)
        assert parse_topology("mesh:4x3") == ("mesh", 4, 3)
        assert format_topology("torus", 16, 2) == "torus:16x2"

    @pytest.mark.parametrize(
        "bad", ["ring:4x2", "torus", "torus:ax2", "torus:4", "torus:1x2"]
    )
    def test_parse_topology_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_topology(bad)

    def test_traffic_spec_parse_forms(self):
        assert TrafficSpec.parse("uniform") == TrafficSpec("uniform")
        parsed = TrafficSpec.parse(
            {"pattern": "hotspot", "options": {"fraction": 0.04}}
        )
        assert parsed.pattern == "hotspot"
        assert parsed.options_dict() == {"fraction": 0.04}
        assert parsed.label() == "hotspot(fraction=0.04)"
        assert TrafficSpec.parse(parsed) is parsed

    def test_traffic_spec_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec.parse({"options": {}})
        with pytest.raises(ConfigurationError):
            TrafficSpec.parse({"pattern": "uniform", "extra": 1})
        with pytest.raises(ConfigurationError):
            TrafficSpec.parse(42)


class TestCampaignSpec:
    def test_expansion_order_and_count(self):
        spec = tiny_spec(
            algorithms=("ecube", "nbc"), loads=(0.2, 0.4), seeds=(1, 2)
        )
        configs = spec.expand()
        assert spec.point_count == len(configs) == 8
        assert [(c.algorithm, c.offered_load, c.seed) for c in configs] == [
            ("ecube", 0.2, 1), ("ecube", 0.2, 2),
            ("ecube", 0.4, 1), ("ecube", 0.4, 2),
            ("nbc", 0.2, 1), ("nbc", 0.2, 2),
            ("nbc", 0.4, 1), ("nbc", 0.4, 2),
        ]
        assert all(c.radix == 4 and c.topology == "torus" for c in configs)
        assert all(c.warmup_cycles == 200 for c in configs)

    def test_expanded_points_share_one_signature(self):
        configs = tiny_spec(
            algorithms=("ecube", "nbc"), loads=(0.2, 0.4), seeds=(1, 2)
        ).expand()
        assert len({campaign_signature(c) for c in configs}) == 1
        assert len({point_key(c) for c in configs}) == len(configs)

    def test_identity_mode_splits_the_signature_backend_does_not(self):
        # Strict batch results are bit-identical to object results, so
        # the two backends share one content address — but relaxed
        # results are only statistically equivalent and must live under
        # their own signature, never served where strict was asked for.
        base = tiny_config(
            flow_control="conservative", backend="batch"
        )
        strict_batch = dataclasses.replace(base, identity="strict")
        relaxed = dataclasses.replace(base, identity="relaxed")
        object_engine = dataclasses.replace(
            base, backend="object", identity="strict"
        )
        assert campaign_signature(strict_batch) == campaign_signature(
            object_engine
        )
        assert campaign_signature(relaxed) != campaign_signature(
            strict_batch
        )
        assert config_record_dict(relaxed) != config_record_dict(
            strict_batch
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"algorithms": ()},
            {"algorithms": ("warp-drive",)},
            {"loads": ()},
            {"profile": "warp"},
            {"base": {"offered_load": 0.5}},
            {"name": "a/b"},
        ],
    )
    def test_validation_rejects(self, kwargs):
        defaults = dict(
            name="x", algorithms=("ecube",), loads=(0.2,)
        )
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            CampaignSpec(**defaults)

    def test_dict_roundtrip(self):
        spec = tiny_spec(
            algorithms=("ecube", "nbc"),
            loads=(0.2, 0.4),
            traffics=(
                TrafficSpec("hotspot", (("fraction", 0.04),)),
            ),
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        json.dumps(spec.to_dict())  # must be JSON-serializable as-is

    def test_file_roundtrip(self, tmp_path):
        spec = tiny_spec()
        path = str(tmp_path / "spec.json")
        spec.to_file(path)
        assert CampaignSpec.from_file(path) == spec

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            CampaignSpec.from_dict(
                {"name": "x", "algorithms": ["ecube"], "loads": [0.2],
                 "color": "red"}
            )
        with pytest.raises(ConfigurationError, match="missing required"):
            CampaignSpec.from_dict({"name": "x"})
        with pytest.raises(ConfigurationError, match="not valid JSON|read"):
            CampaignSpec.from_file("/nonexistent/spec.json")

    def test_grid_label(self):
        config = tiny_config(
            traffic="hotspot", traffic_options={"fraction": 0.04}
        )
        assert grid_label(config) == ("torus:4x2", "hotspot(fraction=0.04)")
        vct = tiny_config(switching="vct", vc_buffer_depth=4)
        assert grid_label(vct) == ("torus:4x2", "uniform/vct")


class TestResultStore:
    def test_put_get_roundtrip_and_persistence(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        config = tiny_config(seed=4)
        result = run_point(config)
        store = ResultStore(path)
        assert store.get(config) is None
        assert store.put(config, result) is True
        assert store.put(config, result) is False  # already stored
        assert store.get(config) == result
        # A fresh process sees the same bytes-on-disk record.
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get(config) == result
        assert reloaded.signatures() == {campaign_signature(config): 1}

    def test_corrupt_line_recovery(self, tmp_path):
        path = tmp_path / "store.jsonl"
        config = tiny_config(seed=4)
        result = run_point(config)
        store = ResultStore(str(path))
        store.put(config, result)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("garbage garbage\n")
        with pytest.warns(StoreWarning, match="corrupt"):
            recovered = ResultStore(str(path))
        assert recovered.get(config) == result
        sidecar = (tmp_path / "store.jsonl.corrupt").read_text()
        assert "garbage garbage" in sidecar  # original preserved
        # The store itself was rewritten to valid records only.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["v"] for r in records] == [STORE_VERSION]

    def test_same_key_different_config_refused(self, tmp_path):
        config = tiny_config(seed=4)
        result = run_point(config)
        store = ResultStore(str(tmp_path / "store.jsonl"))
        store.put(config, result)
        other = config_record_dict(tiny_config(seed=5))
        with pytest.raises(StoreIntegrityError, match="different config"):
            store.put_record(
                campaign_signature(config), point_key(config), result, other
            )

    def test_mismatched_stored_config_is_a_miss(self, tmp_path):
        """A record whose config disagrees with the lookup is never served."""
        path = tmp_path / "store.jsonl"
        config = tiny_config(seed=4)
        result = run_point(config)
        store = ResultStore(str(path))
        store.put(config, result)
        # Craft a collision: same key, different stored config.
        record = json.loads(path.read_text())
        record["config"] = config_record_dict(tiny_config(seed=5))
        path.write_text(json.dumps(record) + "\n")
        tampered = ResultStore(str(path))
        with pytest.warns(StoreWarning, match="collision"):
            assert tampered.get(config) is None

    def test_distinct_configs_get_distinct_keys(self):
        configs = tiny_spec(
            algorithms=("ecube", "nbc", "phop"),
            loads=(0.2, 0.4),
            seeds=(1, 2),
        ).expand()
        keys = {config_key(config) for config in configs}
        assert len(keys) == len(configs) == 12
        # config_key is result_key over (signature, point).
        config = configs[0]
        assert config_key(config) == result_key(
            campaign_signature(config), point_key(config)
        )

    def test_coverage(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        configs = tiny_spec(loads=(0.2, 0.4)).expand()
        result = run_point(configs[0])
        store.put(configs[0], result)
        cached, missing = store.coverage(configs)
        assert cached == 1
        assert missing == [configs[1]]

    def test_gc_compacts_superseded_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        config = tiny_config(seed=4)
        result = run_point(config)
        store = ResultStore(str(path))
        store.put(config, result)
        # Forge the on-disk state the append-only path can leave behind:
        # the same record shadowed twice (last-record-wins on load).
        line = path.read_text()
        path.write_text(line * 3)
        reloaded = ResultStore(str(path))
        stats = reloaded.gc()
        assert stats["lines_before"] == 3
        assert stats["lines_after"] == 1
        assert stats["dropped_lines"] == 2
        assert stats["live_records"] == 1
        assert stats["bytes_after"] < stats["bytes_before"]
        assert stats["sidecars_removed"] == []
        # The surviving line still serves the record.
        assert ResultStore(str(path)).get(config) == result

    def test_gc_purges_sidecars_only_on_request(self, tmp_path):
        path = tmp_path / "store.jsonl"
        config = tiny_config(seed=4)
        store = ResultStore(str(path))
        store.put(config, run_point(config))
        corrupt = tmp_path / "store.jsonl.corrupt"
        corrupt.write_text("quarantined junk\n")
        assert store.gc()["sidecars_removed"] == []
        assert corrupt.exists()
        stats = store.gc(purge_sidecars=True)
        assert stats["sidecars_removed"] == [str(corrupt)]
        assert not corrupt.exists()

    def test_gc_on_missing_store_is_a_noop(self, tmp_path):
        store = ResultStore(str(tmp_path / "absent.jsonl"))
        stats = store.gc()
        assert stats["lines_before"] == 0
        assert stats["dropped_lines"] == 0
        assert not (tmp_path / "absent.jsonl").exists()

    def _stamped_store(self, tmp_path, stamps):
        """A store with one record per (config, recorded_at) stamp.

        Reuses one simulated result across seeds — retention only looks
        at keys and stamps, not payloads — and returns the store plus
        the configs in *stamps* order.
        """
        store = ResultStore(str(tmp_path / "store.jsonl"))
        result = run_point(tiny_config(seed=40))
        configs = []
        for offset, stamp in enumerate(stamps):
            config = tiny_config(seed=40 + offset)
            store.put(config, result)
            record = store._records[result_key(
                campaign_signature(config), point_key(config)
            )]
            if stamp is None:
                del record["recorded_at"]  # forge a legacy record
            else:
                record["recorded_at"] = stamp
            configs.append(config)
        return store, configs

    def test_put_record_stamps_recorded_at(self, tmp_path):
        import time

        path = tmp_path / "store.jsonl"
        before = time.time()
        store = ResultStore(str(path))
        config = tiny_config(seed=4)
        store.put(config, run_point(config))
        record = json.loads(path.read_text().splitlines()[0])
        assert before <= record["recorded_at"] <= time.time()

    def test_gc_max_age_evicts_oldest_records(self, tmp_path):
        now = 1_000_000.0
        store, (old, legacy, fresh) = self._stamped_store(
            tmp_path, [now - 10 * 86400, None, now - 86400]
        )
        stats = store.gc(max_age_days=5, now=now)
        # The stale record and the unstamped legacy one (treated as
        # epoch 0, i.e. oldest) both go; the fresh one survives.
        assert stats["evicted_age"] == 2
        assert stats["evicted_size"] == 0
        assert stats["live_records"] == 1
        reloaded = ResultStore(str(tmp_path / "store.jsonl"))
        assert reloaded.get(old) is None
        assert reloaded.get(legacy) is None
        assert reloaded.get(fresh) is not None

    def test_gc_max_size_evicts_oldest_first(self, tmp_path):
        store, configs = self._stamped_store(
            tmp_path, [100.0, 200.0, 300.0]
        )
        line = (tmp_path / "store.jsonl").read_text().splitlines()[0]
        # Budget for exactly two record lines: the oldest goes.
        budget_mb = (2 * (len(line) + 1) + 10) / (1024 * 1024)
        stats = store.gc(max_size_mb=budget_mb)
        assert stats["evicted_size"] == 1
        assert stats["evicted_age"] == 0
        # Evictions are not misreported as superseded-duplicate lines.
        assert stats["dropped_lines"] == 0
        assert stats["live_records"] == 2
        reloaded = ResultStore(str(tmp_path / "store.jsonl"))
        assert reloaded.get(configs[0]) is None
        assert reloaded.get(configs[1]) is not None
        assert reloaded.get(configs[2]) is not None
        size = (tmp_path / "store.jsonl").stat().st_size
        assert size <= budget_mb * 1024 * 1024

    def test_gc_zero_size_budget_empties_store(self, tmp_path):
        store, configs = self._stamped_store(tmp_path, [100.0, 200.0])
        stats = store.gc(max_size_mb=0.0)
        assert stats["evicted_size"] == 2
        assert stats["live_records"] == 0
        assert (tmp_path / "store.jsonl").stat().st_size == 0

    def test_gc_budgets_keep_everything_when_under(self, tmp_path):
        store, configs = self._stamped_store(tmp_path, [100.0, 200.0])
        import time

        stats = store.gc(max_age_days=36500.0, max_size_mb=100.0,
                         now=time.time())
        assert stats["evicted_age"] == 0
        assert stats["evicted_size"] == 0
        assert stats["live_records"] == 2


class TestCrossCampaignMemoization:
    def test_shared_points_are_never_resimulated(
        self, tmp_path, monkeypatch
    ):
        """Two campaigns sharing a point: the second gets it for free."""
        store = ResultStore(str(tmp_path / "store.jsonl"))
        first = run_campaign(
            tiny_spec(name="wide", algorithms=("ecube", "nbc")), store
        )
        assert (first.cached, first.simulated) == (0, 2)

        boobytrap_workers(monkeypatch)  # any engine invocation now fails
        second = run_campaign(
            tiny_spec(name="narrow", algorithms=("ecube",)), store
        )
        assert second.all_cached
        # Bit-identical round trip: the store serves the exact result.
        assert second.results == [first.results[0]]

    def test_repeat_run_with_jobs_is_pure_cache(self, tmp_path, monkeypatch):
        """An identical re-run performs zero engine invocations, under
        --jobs as well as serially."""
        store = ResultStore(str(tmp_path / "store.jsonl"))
        spec = tiny_spec(
            name="par", algorithms=("ecube", "phop"), loads=(0.2, 0.3)
        )
        first = run_campaign(spec, store, jobs=2)
        assert first.simulated == 4

        boobytrap_workers(monkeypatch)
        for jobs in (1, 2):
            again = run_campaign(spec, store, jobs=jobs)
            assert again.all_cached
            assert again.results == first.results

    def test_store_served_equals_fresh_run(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        spec = tiny_spec(name="oracle", loads=(0.3,))
        report = run_campaign(spec, store)
        assert report.results == [run_point(c) for c in spec.expand()]


class TestOrchestrator:
    def test_report_counts_and_summary(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        spec = tiny_spec(name="half", loads=(0.2, 0.4))
        configs = spec.expand()
        store.put(configs[0], run_point(configs[0]))
        report = run_campaign(spec, store)
        assert (report.total, report.cached, report.simulated) == (2, 1, 1)
        assert not report.all_cached
        assert "cache hits: 1/2" in report.summary()
        assert report.configs == configs
        assert len(report.results) == 2

    def test_progress_lines_carry_campaign_eta(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        lines = []
        run_campaign(
            tiny_spec(name="eta", loads=(0.2, 0.3)),
            store,
            progress=lines.append,
        )
        assert any("2 to simulate" in line for line in lines)
        assert any("eta " in line and "campaign" in line for line in lines)
        assert "cache hits: 0/2" in lines[-1]


class TestExport:
    def _filled(self, tmp_path, **spec_kwargs):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        spec = tiny_spec(**spec_kwargs)
        run_campaign(spec, store)
        return spec, store

    def test_export_is_deterministic(self, tmp_path):
        spec, store = self._filled(
            tmp_path, algorithms=("ecube", "nbc"), loads=(0.2, 0.4)
        )
        streams = [io.StringIO(), io.StringIO()]
        for stream in streams:
            write_campaign_csv(collect(spec, store), stream)
        assert streams[0].getvalue() == streams[1].getvalue()
        header = streams[0].getvalue().splitlines()[0]
        for column in ("topology", "radix", "seed", "algorithm"):
            assert column in header

    def test_missing_points_fail_loudly(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        spec = tiny_spec(loads=(0.2, 0.4))
        with pytest.raises(IncompleteCampaignError, match="2 of its points"):
            collect(spec, store)

    def test_tables_and_grids(self, tmp_path):
        spec, store = self._filled(tmp_path, algorithms=("ecube", "nbc"))
        pairs = collect(spec, store)
        grids = grid_series(pairs)
        assert set(grids) == {("torus:4x2", "uniform")}
        assert set(grids[("torus:4x2", "uniform")]) == {"ecube", "nbc"}
        tables = format_campaign_tables(spec, pairs)
        assert "tiny" in tables and "torus:4x2" in tables


class TestFigureSpecs:
    def test_figure3_spec_expands_to_the_sweep_grid(self):
        """`repro-campaign --figure 3` runs exactly figure3's configs."""
        spec = paper_figures.figure_campaign_spec(
            "3", profile="quick", seed=3
        )
        assert spec.name == "figure-3-quick"
        expected = run_sweep_points(
            paper_figures._base_config("quick", traffic="uniform", seed=3),
            paper_figures.FIGURE_GRIDS["3"]["algorithms"],
            PAPER_LOADS,
        )
        assert spec.expand() == expected

    def test_vct_spec_pins_switching(self):
        spec = paper_figures.figure_campaign_spec("vct", profile="quick")
        configs = spec.expand()
        assert all(config.switching == "vct" for config in configs)
        assert set(spec.algorithms) == set(
            paper_figures.FIGURE_GRIDS["vct"]["algorithms"]
        )

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError, match="unknown figure"):
            paper_figures.figure_campaign_spec("99")


class TestCampaignCli:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = str(tmp_path / "spec.json")
        tiny_spec(name="cli", algorithms=("ecube",), loads=(0.2,)).to_file(
            path
        )
        return path

    def test_run_then_rerun_is_all_cache_hits(
        self, tmp_path, spec_file, capsys, monkeypatch
    ):
        store = str(tmp_path / "store.jsonl")
        argv = ["run", spec_file, "--store", store, "--quiet"]
        assert campaign_main(argv) == 0
        assert "cache hits: 0/1" in capsys.readouterr().out
        boobytrap_workers(monkeypatch)  # the re-run must not simulate
        assert campaign_main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hits: 1/1" in out
        assert f"store: {store} (1 records)" in out

    def test_export_matches_run_csv(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        run_csv = str(tmp_path / "run.csv")
        export_csv = str(tmp_path / "export.csv")
        assert campaign_main(
            ["run", spec_file, "--store", store, "--quiet",
             "--csv", run_csv]
        ) == 0
        assert campaign_main(
            ["export", spec_file, "--store", store, "--csv", export_csv]
        ) == 0
        capsys.readouterr()
        with open(run_csv) as a, open(export_csv) as b:
            assert a.read() == b.read()

    def test_status_reports_coverage(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store.jsonl")
        assert campaign_main(["status", "--store", store, spec_file]) == 0
        out = capsys.readouterr().out
        assert "0/1 points cached (0.0%)" in out
        assert "missing:" in out
        campaign_main(["run", spec_file, "--store", store, "--quiet"])
        capsys.readouterr()
        assert campaign_main(["status", "--store", store, spec_file]) == 0
        assert "1/1 points cached (100.0%)" in capsys.readouterr().out

    def test_export_incomplete_campaign_exits_3(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        code = campaign_main(
            ["export", spec_file, "--store", store, "--tables"]
        )
        assert code == 3
        assert "not in the store yet" in capsys.readouterr().err

    def test_gc_subcommand_reports_compaction(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        campaign_main(["run", spec_file, "--store", store, "--quiet"])
        with open(store) as stream:
            line = stream.read()
        with open(store, "w") as stream:
            stream.write(line * 2)  # shadowed duplicate
        sidecar = tmp_path / "store.jsonl.stale"
        sidecar.write_text("old schema\n")
        capsys.readouterr()
        assert campaign_main(
            ["gc", "--store", store, "--purge-sidecars"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 live" in out
        assert "1 superseded line(s) dropped (2 -> 1)" in out
        assert "removed sidecar:" in out
        assert not sidecar.exists()

    def test_gc_subcommand_retention_budgets(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        campaign_main(["run", spec_file, "--store", store, "--quiet"])
        capsys.readouterr()
        # A generous age budget keeps the fresh record; a zero size
        # budget then evicts it.
        assert campaign_main(
            ["gc", "--store", store, "--max-age-days", "365"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 0 record(s) older than 365 day(s)" in out
        assert campaign_main(
            ["gc", "--store", store, "--max-size-mb", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 1 record(s) to fit 0 MiB" in out
        assert len(ResultStore(store)) == 0

    def test_usage_errors_exit_2(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store.jsonl")
        assert campaign_main(["run", "--store", store]) == 2  # no spec
        assert campaign_main(
            ["run", spec_file, "--figure", "3", "--store", store]
        ) == 2  # both spec forms
        campaign_main(["run", spec_file, "--store", store, "--quiet"])
        assert campaign_main(
            ["export", spec_file, "--store", store]
        ) == 2  # nothing to export
        capsys.readouterr()
