"""Tests for the ``repro-bench --compare`` regression gate.

Synthetic report dicts only — no engine runs.  The contract: gated
rows fail on same-host throughput regressions beyond tolerance, the
congested batch rows are additionally held to flit-event throughput,
and rows from older baseline schemas that lack a gated field are
skipped with a warning instead of failing the gate.
"""

import copy

from repro.benchmarks.engine_speed import _GATED_ROWS, compare_reports

HOST = {"machine": "test", "cpu_count": 4}


def report(batch_relaxed=None):
    """A minimal single-algorithm report with every gated row."""
    rows = {
        "idle": {"cycles_per_sec": 1000.0},
        "congested": {"cycles_per_sec": 500.0},
        "congested_conservative": {"cycles_per_sec": 400.0},
        "batch_b32": {
            "aggregate_cycles_per_sec": 8000.0,
            "flit_events_per_sec": 90000.0,
        },
        "batch_relaxed_b32": batch_relaxed or {
            "aggregate_cycles_per_sec": 12000.0,
            "flit_events_per_sec": 140000.0,
        },
    }
    return {"host": dict(HOST), "engines": {"ecube": rows}}


class TestCompareGate:
    def test_identical_reports_pass(self):
        ok, lines = compare_reports(report(), report(), tolerance=0.2)
        assert ok
        assert not any("REGRESSION" in line for line in lines)

    def test_flit_event_rate_is_gated(self):
        assert ("batch_b32", "flit_events_per_sec") in _GATED_ROWS
        assert ("batch_relaxed_b32", "flit_events_per_sec") in _GATED_ROWS
        # Cycle rate holds but flit throughput collapses — the kind of
        # regression a cycles-only gate would miss (stalled traffic
        # spins cycles without moving flits).
        current = report(batch_relaxed={
            "aggregate_cycles_per_sec": 12000.0,
            "flit_events_per_sec": 60000.0,
        })
        ok, lines = compare_reports(current, report(), tolerance=0.2)
        assert not ok
        failing = [line for line in lines if "REGRESSION" in line]
        assert len(failing) == 1
        assert "batch_relaxed_b32" in failing[0]
        assert "flit-ev/s" in failing[0]

    def test_missing_field_in_old_baseline_warns_not_fails(self):
        baseline = report()
        for row in ("batch_b32", "batch_relaxed_b32"):
            del baseline["engines"]["ecube"][row]["flit_events_per_sec"]
        ok, lines = compare_reports(report(), baseline, tolerance=0.2)
        assert ok
        skips = [line for line in lines if "lacks" in line]
        assert len(skips) == 2
        assert all("baseline" in line for line in skips)

    def test_missing_field_in_current_warns_not_fails(self):
        current = report()
        del current["engines"]["ecube"]["batch_b32"]["flit_events_per_sec"]
        ok, lines = compare_reports(current, report(), tolerance=0.2)
        assert ok
        assert any(
            "current row lacks 'flit_events_per_sec'" in line
            for line in lines
        )

    def test_cross_host_regression_downgrades_to_warning(self):
        current = report(batch_relaxed={
            "aggregate_cycles_per_sec": 12000.0,
            "flit_events_per_sec": 60000.0,
        })
        current["host"] = {"machine": "other", "cpu_count": 8}
        ok, lines = compare_reports(current, report(), tolerance=0.2)
        assert ok
        assert any("WARN (host differs)" in line for line in lines)

    def test_idle_rescaling_absorbs_machine_speed(self):
        # Same host, everything uniformly 2x slower including idle:
        # the idle-derived scale normalizes it away.
        current = copy.deepcopy(report())
        for row in current["engines"]["ecube"].values():
            for field in row:
                row[field] = row[field] / 2.0
        ok, lines = compare_reports(current, report(), tolerance=0.2)
        assert ok
        assert any("scale" in line and "0.500" in line for line in lines)

    def test_empty_overlap_fails_the_gate(self):
        ok, lines = compare_reports(
            {"host": HOST, "engines": {}}, report(), tolerance=0.2
        )
        assert not ok
        assert any("no comparable gated rows" in line for line in lines)
