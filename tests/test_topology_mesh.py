"""Unit tests for the mesh topology."""

import pytest

from repro.topology.mesh import Mesh


class TestConstruction:
    def test_node_count(self, mesh4):
        assert mesh4.num_nodes == 16

    def test_corner_has_two_outgoing_links(self, mesh4):
        assert len(list(mesh4.out_links(0))) == 2

    def test_edge_node_has_three(self, mesh4):
        edge = mesh4.node((1, 0))
        assert len(list(mesh4.out_links(edge))) == 3

    def test_interior_node_has_four(self, mesh4):
        interior = mesh4.node((1, 1))
        assert len(list(mesh4.out_links(interior))) == 4

    def test_total_links(self, mesh4):
        # 2 * n * k^(n-1) * (k-1) bidirectional pairs = 2 links each
        assert mesh4.num_links == 2 * 2 * 4 * 3

    def test_no_wrap_links(self, mesh4):
        assert not any(link.wraps for link in mesh4.links)

    def test_boundary_out_link_missing(self, mesh4):
        top = mesh4.node((3, 0))
        assert mesh4.out_link(top, 0, 1) is None


class TestDistances:
    def test_manhattan_distance(self, mesh4):
        assert mesh4.distance(mesh4.node((0, 0)), mesh4.node((3, 3))) == 6

    def test_diameter(self, mesh4):
        assert mesh4.diameter == 6

    def test_average_distance_small(self):
        mesh2 = Mesh(2, 1)
        assert mesh2.average_distance() == pytest.approx(1.0)

    def test_minimal_direction_unique(self, mesh4):
        src = mesh4.node((0, 0))
        dst = mesh4.node((3, 0))
        assert mesh4.minimal_directions(src, dst, 0) == (1,)
        assert mesh4.minimal_directions(dst, src, 0) == (-1,)

    def test_max_negative_hops(self, mesh4):
        assert mesh4.max_negative_hops() == 3


class TestBipartite:
    def test_neighbours_alternate_parity_any_radix(self):
        """Meshes are bipartite regardless of radix (unlike odd tori)."""
        mesh5 = Mesh(5, 2)
        for node in range(mesh5.num_nodes):
            for link in mesh5.out_links(node):
                assert mesh5.parity(link.src) != mesh5.parity(link.dst)
