"""The ``repro-obs`` command-line interface."""

import json

import pytest

from repro.obs import cli


def _run(argv):
    return cli.main(argv)


class TestRunVerb:
    @pytest.fixture(scope="class")
    def run_output(self, tmp_path_factory, capsys=None):
        out = tmp_path_factory.mktemp("obs-cli")
        argv = [
            "run",
            "--algorithm", "ecube",
            "--load", "0.4",
            "--radix", "4",
            "--profile", "tiny",
            "--stride", "16",
            "--out", str(out),
        ]
        code = _run(argv)
        return code, out

    def test_exits_zero(self, run_output):
        code, _ = run_output
        assert code == 0

    def test_exports_artifacts(self, run_output):
        _, out = run_output
        suffixes = sorted(
            ".".join(path.name.rsplit(".", 2)[-2:])
            for path in out.iterdir()
        )
        assert suffixes == [
            "heatmap.csv",
            "heatmap.txt",
            "metrics.json",
            "probes.csv",
            "probes.ndjson",
            "trace.ndjson",
        ]

    def test_metrics_json_is_schema_versioned(self, run_output):
        _, out = run_output
        metrics_path = next(out.glob("*.metrics.json"))
        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.obs.metrics"
        assert metrics["events"]["msg_created"] > 0

    def test_explicit_radix_wins_over_profile(self, run_output):
        # --radix 4 with --profile tiny-independent geometry: the
        # heatmap CSV has one row per link of a 4x4 torus (64 links).
        _, out = run_output
        heatmap = next(out.glob("*.heatmap.csv")).read_text()
        assert len(heatmap.splitlines()) == 1 + 64

    def test_prints_summary(self, capsys):
        code = _run(
            [
                "run", "--algorithm", "ecube", "--load", "0.2",
                "--radix", "4", "--profile", "tiny",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "repro.obs.metrics" in captured
        assert "phase" in captured  # profiler table


class TestTraceVerb:
    def test_valid_trace_accepted(self, tmp_path, capsys):
        out = tmp_path / "art"
        assert _run(
            [
                "run", "--algorithm", "ecube", "--load", "0.2",
                "--radix", "4", "--profile", "tiny", "--out", str(out),
            ]
        ) == 0
        capsys.readouterr()
        trace = next(out.glob("*.trace.ndjson"))
        assert _run(["trace", str(trace)]) == 0
        printed = capsys.readouterr().out
        assert "valid trace" in printed
        assert "msg_created" in printed

    def test_invalid_trace_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.ndjson"
        bad.write_text('{"record": "header", "schema": "nope"}\n{}\n')
        assert _run(["trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestHeatmapVerb:
    def test_ranks_links(self, tmp_path, capsys):
        out = tmp_path / "art"
        assert _run(
            [
                "run", "--algorithm", "nbc", "--load", "0.5",
                "--radix", "4", "--profile", "tiny", "--out", str(out),
            ]
        ) == 0
        capsys.readouterr()
        heatmap = next(out.glob("*.heatmap.csv"))
        assert _run(
            ["heatmap", str(heatmap), "--metric", "carried", "--top", "3"]
        ) == 0
        printed = capsys.readouterr().out
        assert "top 3 links by flits_carried" in printed


class TestProfileVerb:
    def test_prints_phase_table(self, capsys):
        code = _run(
            [
                "profile", "--algorithm", "ecube", "--load", "0.3",
                "--radix", "4", "--cycles", "2000",
            ]
        )
        printed = capsys.readouterr().out
        assert code == 0
        assert "transmission" in printed
        assert "total" in printed
