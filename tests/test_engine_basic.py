"""Engine behaviour tests: latency, conservation, determinism, sampling."""

import statistics

import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine
from tests.conftest import tiny_config


class TestZeroLoadLatency:
    def test_latency_is_ml_plus_d_minus_1_plus_waits(self):
        """At negligible load the measured latency hits the paper's ideal
        (m_l + d - 1) exactly for at least some messages."""
        config = tiny_config(
            radix=8, offered_load=0.02, message_length=16, seed=3
        )
        engine = Engine(config)
        engine.start_sample()
        engine.run_cycles(2500)
        sample = engine.end_sample()
        assert sample.delivered > 50
        excesses = [
            latency - (16 + hops - 1) for latency, hops in sample.deliveries
        ]
        assert min(excesses) == 0
        assert statistics.mean(excesses) < 5
        assert all(excess >= 0 for excess in excesses)

    @pytest.mark.parametrize(
        "algorithm", ["ecube", "nlast", "2pn", "phop", "nhop", "nbc"]
    )
    def test_no_algorithm_beats_the_ideal(self, algorithm):
        config = tiny_config(
            radix=8,
            algorithm=algorithm,
            offered_load=0.05,
            message_length=8,
            seed=9,
        )
        engine = Engine(config)
        engine.start_sample()
        engine.run_cycles(1500)
        sample = engine.end_sample()
        assert sample.delivered > 0
        for latency, hops in sample.deliveries:
            assert latency >= 8 + hops - 1

    def test_conservative_flow_control_also_reaches_ideal(self):
        config = tiny_config(
            radix=8,
            offered_load=0.02,
            message_length=16,
            seed=3,
            flow_control="conservative",
        )
        engine = Engine(config)
        engine.start_sample()
        engine.run_cycles(2500)
        sample = engine.end_sample()
        excesses = [
            latency - (16 + hops - 1) for latency, hops in sample.deliveries
        ]
        assert min(excesses) == 0


class TestConservation:
    @pytest.mark.parametrize(
        "algorithm", ["ecube", "nlast", "2pn", "phop", "nhop", "nbc"]
    )
    def test_flits_conserved_under_load(self, algorithm):
        config = tiny_config(algorithm=algorithm, offered_load=0.8, seed=5)
        engine = Engine(config)
        for _ in range(6):
            engine.run_cycles(300)
            assert engine.conservation_check()

    def test_drains_when_load_stops(self):
        config = tiny_config(offered_load=0.7, seed=5)
        engine = Engine(config)
        engine.run_cycles(1000)
        # Stop traffic and let the network drain.
        engine.arrivals.rate = 0.0
        engine.arrivals.reseed(engine.cycle, engine.rng.stream("arrivals"))
        engine.run_cycles(3000)
        assert engine.in_flight == 0
        assert engine.network_flits() == 0
        assert engine.conservation_check()


class TestDeterminism:
    def test_same_seed_same_results(self):
        results = []
        for _ in range(2):
            engine = Engine(tiny_config(offered_load=0.5, seed=11))
            engine.start_sample()
            engine.run_cycles(800)
            sample = engine.end_sample()
            results.append(
                (
                    sample.delivered,
                    sample.flits_moved,
                    tuple(sample.deliveries),
                )
            )
        assert results[0] == results[1]

    def test_different_seed_differs(self):
        samples = []
        for seed in (1, 2):
            engine = Engine(tiny_config(offered_load=0.5, seed=seed))
            engine.start_sample()
            engine.run_cycles(800)
            samples.append(engine.end_sample())
        assert (
            samples[0].deliveries != samples[1].deliveries
            or samples[0].flits_moved != samples[1].flits_moved
        )


class TestSampling:
    def test_nested_sample_asserts(self):
        engine = Engine(tiny_config())
        engine.start_sample()
        with pytest.raises(AssertionError):
            engine.start_sample()

    def test_end_without_start_asserts(self):
        engine = Engine(tiny_config())
        with pytest.raises(AssertionError):
            engine.end_sample()

    def test_sample_counts_only_sample_window(self):
        engine = Engine(tiny_config(offered_load=0.4, seed=4))
        engine.run_cycles(500)
        delivered_before = engine.delivered_total
        engine.start_sample()
        engine.run_cycles(400)
        sample = engine.end_sample()
        assert sample.cycles == 400
        assert sample.delivered <= engine.delivered_total - delivered_before
        assert sample.flits_moved > 0

    def test_advance_streams_changes_future(self):
        """Re-seeding between samples yields different subsequent traffic."""
        def run(reseed):
            engine = Engine(tiny_config(offered_load=0.4, seed=6))
            engine.run_cycles(300)
            if reseed:
                engine.advance_streams()
            engine.start_sample()
            engine.run_cycles(400)
            return engine.end_sample().deliveries

        assert run(True) != run(False)


class TestUtilizationAccounting:
    def test_achieved_utilization_tracks_offered_at_low_load(self):
        config = tiny_config(radix=8, offered_load=0.15, seed=13)
        engine = Engine(config)
        engine.run_cycles(1000)
        engine.start_sample()
        engine.run_cycles(2000)
        sample = engine.end_sample()
        utilization = sample.flits_moved / (
            sample.cycles * engine.topology.num_links
        )
        assert utilization == pytest.approx(0.15, rel=0.12)
