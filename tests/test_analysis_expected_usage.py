"""Cross-validation: analytic vs measured virtual-channel usage."""

import pytest

from repro.analysis.vc_usage import expected_class_usage, usage_fractions
from repro.routing.registry import make_algorithm
from repro.traffic.uniform import UniformTraffic
from repro.util.errors import ConfigurationError
from tests.conftest import tiny_config


class TestExpectedClassUsage:
    def test_shares_sum_to_one(self, torus6):
        scheme = make_algorithm("phop", torus6)
        shares = expected_class_usage(scheme, UniformTraffic(torus6))
        assert sum(shares) == pytest.approx(1.0)

    def test_phop_shares_strictly_decreasing(self, torus6):
        """The paper: low-numbered channels are used more; only messages
        between distant nodes ever reach the top classes."""
        scheme = make_algorithm("phop", torus6)
        shares = expected_class_usage(scheme, UniformTraffic(torus6))
        positive = [share for share in shares if share > 0]
        assert all(a > b for a, b in zip(positive, positive[1:]))

    def test_phop_class0_share_is_one_over_mean_distance(self, torus6):
        """Every message uses class 0 exactly once, so its share of flit
        traffic is 1 / mean hops."""
        scheme = make_algorithm("phop", torus6)
        traffic = UniformTraffic(torus6)
        shares = expected_class_usage(scheme, traffic)
        assert shares[0] == pytest.approx(1 / traffic.mean_distance())

    def test_nhop_top_class_tiny(self, torus6):
        scheme = make_algorithm("nhop", torus6)
        shares = expected_class_usage(scheme, UniformTraffic(torus6))
        assert shares[-1] < shares[0] / 5

    def test_nbc_has_no_closed_form(self, torus6):
        scheme = make_algorithm("nbc", torus6)
        with pytest.raises(ConfigurationError, match="starting class"):
            expected_class_usage(scheme, UniformTraffic(torus6))

    def test_matches_low_load_simulation(self):
        """Measured per-class flit shares converge to the analytic ones
        at low load (where routing choices don't skew class usage)."""
        from repro.experiments.runner import run_point

        config = tiny_config(
            radix=6, algorithm="nhop", offered_load=0.1, seed=21
        )
        result = run_point(config)
        measured = usage_fractions(result.vc_class_usage)

        scheme = make_algorithm("nhop", config.build_topology())
        expected = expected_class_usage(
            scheme, UniformTraffic(scheme.topology)
        )
        for measured_share, expected_share in zip(measured, expected):
            assert measured_share == pytest.approx(
                expected_share, abs=0.03
            )
