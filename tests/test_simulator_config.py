"""Unit tests for SimulationConfig validation and builders."""

import pytest

from repro.simulator.config import SimulationConfig
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.util.errors import ConfigurationError


class TestDefaults:
    def test_defaults_are_the_paper_setup(self):
        config = SimulationConfig()
        assert config.radix == 16
        assert config.n_dims == 2
        assert config.topology == "torus"
        assert config.message_length == 16
        assert config.switching == "wormhole"
        assert config.injection_limit is not None

    def test_default_buffer_depth_wormhole_ideal(self):
        assert SimulationConfig().effective_buffer_depth() == 1

    def test_default_buffer_depth_wormhole_conservative(self):
        config = SimulationConfig(flow_control="conservative")
        assert config.effective_buffer_depth() == 2

    def test_default_buffer_depth_vct_is_packet(self):
        config = SimulationConfig(switching="vct", message_length=20)
        assert config.effective_buffer_depth() == 20

    def test_default_buffer_depth_saf_is_packet(self):
        config = SimulationConfig(switching="saf")
        assert config.effective_buffer_depth() == 16


class TestValidation:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(topology="hypercube")

    def test_rejects_unknown_switching(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(switching="circuit")

    def test_rejects_unknown_selection_policy(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(selection_policy="psychic")

    def test_rejects_unknown_flow_control(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(flow_control="wishful")

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(offered_load=-0.5)

    def test_rejects_zero_message_length(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(message_length=0)

    def test_rejects_max_below_min_samples(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(min_samples=5, max_samples=3)

    def test_rejects_small_buffer_for_vct(self):
        config = SimulationConfig(switching="vct", vc_buffer_depth=4)
        with pytest.raises(ConfigurationError):
            config.effective_buffer_depth()

    def test_rejects_zero_injection_limit(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(injection_limit=0)

    def test_injection_limit_none_allowed(self):
        assert SimulationConfig(injection_limit=None).injection_limit is None


class TestBuilders:
    def test_builds_torus(self):
        topo = SimulationConfig(radix=4).build_topology()
        assert isinstance(topo, Torus)
        assert topo.radix == 4

    def test_builds_mesh(self):
        topo = SimulationConfig(radix=4, topology="mesh").build_topology()
        assert isinstance(topo, Mesh)

    def test_builds_algorithm(self):
        config = SimulationConfig(radix=4, algorithm="nbc")
        topo = config.build_topology()
        assert config.build_algorithm(topo).name == "nbc"

    def test_builds_traffic_with_options(self):
        config = SimulationConfig(
            radix=16,
            traffic="hotspot",
            traffic_options={"fraction": 0.08},
        )
        topo = config.build_topology()
        assert config.build_traffic(topo).fraction == 0.08

    def test_label_mentions_key_facts(self):
        label = SimulationConfig(radix=8, algorithm="phop").label()
        assert "phop" in label
        assert "8^2" in label
