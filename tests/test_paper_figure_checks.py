"""Unit tests for the shape-check logic, using synthetic sweep series.

The shape checks encode the paper's qualitative claims; these tests pin
their logic without running any simulation, so regressions in the check
definitions are caught instantly.
"""

from repro.experiments.paper_figures import (
    check_figure3,
    check_figure4,
    check_figure5,
    check_low_load_latency,
    check_vct,
    format_checks,
)
from repro.stats.summary import SimulationResult


def result(algorithm, load, latency, utilization):
    return SimulationResult(
        algorithm=algorithm,
        traffic="synthetic",
        offered_load=load,
        injection_rate=0.01,
        average_latency=latency,
        latency_error_bound=0.5,
        average_wait=1.0,
        achieved_utilization=utilization,
        delivered_throughput=utilization,
        samples_used=3,
        converged=True,
        cycles_simulated=1000,
        messages_generated=100,
        messages_delivered=100,
        messages_refused=0,
    )


def series_from(peaks, low_latency=20.0):
    """One low-load + one high-load point per algorithm."""
    return {
        name: [
            result(name, 0.1, low_latency, 0.1),
            result(name, 0.9, low_latency * 10, peak),
        ]
        for name, peak in peaks.items()
    }


PAPERLIKE = {
    "ecube": 0.34,
    "nlast": 0.25,
    "2pn": 0.30,
    "phop": 0.72,
    "nhop": 0.55,
    "nbc": 0.63,
}


class TestFigure3Checks:
    def test_paperlike_series_passes(self):
        checks = check_figure3(series_from(PAPERLIKE))
        assert checks and all(passed for _, passed in checks)

    def test_detects_hop_scheme_regression(self):
        broken = dict(PAPERLIKE, phop=0.2)
        checks = dict(check_figure3(series_from(broken)))
        assert not checks["phop peak throughput exceeds e-cube (uniform)"]

    def test_partial_series_is_fine(self):
        checks = check_figure3(series_from({"ecube": 0.3, "nbc": 0.6}))
        assert all(passed for _, passed in checks)


class TestFigure4Checks:
    def test_paperlike_series_passes(self):
        checks = check_figure4(series_from(PAPERLIKE))
        assert all(passed for _, passed in checks)

    def test_detects_nbc_balance_regression(self):
        broken = dict(PAPERLIKE, nbc=0.3)
        checks = dict(check_figure4(series_from(broken)))
        assert not checks["nbc at least matches nhop under hotspot traffic"]

    def test_hotspot_nlast_check_uses_sustained_throughput(self):
        """nlast may peak early; only the final-load comparison counts."""
        series = series_from(PAPERLIKE)
        # Give nlast a huge early peak but weak sustained throughput.
        series["nlast"][0] = result("nlast", 0.1, 20.0, 0.5)
        checks = dict(check_figure4(series))
        key = (
            "e-cube sustains at least nlast's throughput past "
            "saturation (hotspot)"
        )
        assert checks[key]


class TestFigure5Checks:
    def test_paperlike_local_series_passes(self):
        local = dict(PAPERLIKE, **{"2pn": 0.37, "ecube": 0.30, "nbc": 0.72})
        checks = check_figure5(series_from(local))
        assert all(passed for _, passed in checks)

    def test_detects_2pn_regression(self):
        local = dict(PAPERLIKE, **{"2pn": 0.2, "ecube": 0.3})
        checks = dict(check_figure5(series_from(local)))
        assert not checks["2pn beats e-cube under local traffic"]


class TestVctChecks:
    def test_paperlike_vct_passes(self):
        vct = {"ecube": 0.35, "2pn": 0.6, "nbc": 0.65}
        assert all(passed for _, passed in check_vct(series_from(vct)))

    def test_detects_2pn_not_catching_up(self):
        vct = {"ecube": 0.35, "2pn": 0.4, "nbc": 0.65}
        checks = dict(check_vct(series_from(vct)))
        assert not checks["2pn performs about as well as nbc under VCT"]


class TestLowLoadCheck:
    def test_similar_latencies_pass(self):
        series = series_from({"a": 0.3, "b": 0.4})
        assert check_low_load_latency(series)[1]

    def test_divergent_latencies_fail(self):
        series = {
            "a": [result("a", 0.1, 20.0, 0.1)],
            "b": [result("b", 0.1, 60.0, 0.1)],
        }
        assert not check_low_load_latency(series)[1]


class TestFormatting:
    def test_format_checks_marks_pass_fail(self):
        text = format_checks([("good", True), ("bad", False)])
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
