"""Setup shim: lets ``pip install -e .`` work without the ``wheel`` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path in offline environments.
"""

from setuptools import setup

setup()
