#!/usr/bin/env python3
"""Wormhole vs virtual cut-through vs store-and-forward.

Recreates the paper's Section 3.4 insight in miniature: the same routing
algorithm behaves very differently under the three switching techniques,
and 2pn's weakness is specific to wormhole.  Also shows the latency
structure (SAF pays a full store per hop, pipelined switching does not).

Run:  python examples/switching_comparison.py
"""

import dataclasses

from repro import SimulationConfig, run_point
from repro.stats.metrics import ideal_latency


def main() -> None:
    base = SimulationConfig(
        radix=8,
        n_dims=2,
        traffic="uniform",
        message_length=16,
        warmup_cycles=1500,
        sample_cycles=1000,
        max_samples=4,
        seed=5,
    )

    print("=== Latency structure at low load (offered 0.05) ===")
    print(
        "ideal pipelined latency for the mean 4-hop message:",
        ideal_latency(16, 4),
        "cycles; SAF stores 16 flits per hop instead.",
    )
    for switching in ("wormhole", "vct", "saf"):
        config = dataclasses.replace(
            base, switching=switching, offered_load=0.05, algorithm="ecube"
        )
        result = run_point(config)
        print(
            f"  {switching:>8}: latency={result.average_latency:6.1f} "
            f"cycles"
        )

    print("\n=== The Section 3.4 effect at offered load 0.7 ===")
    header = f"{'':>8}" + "".join(f"{name:>10}" for name in ("ecube", "2pn", "nbc"))
    print(header + "   (normalized throughput)")
    for switching in ("wormhole", "vct"):
        cells = []
        for algorithm in ("ecube", "2pn", "nbc"):
            config = dataclasses.replace(
                base,
                switching=switching,
                algorithm=algorithm,
                offered_load=0.7,
            )
            result = run_point(config)
            cells.append(f"{result.achieved_utilization:>10.3f}")
        print(f"{switching:>8}" + "".join(cells))
    print(
        "\nUnder VCT a blocked packet drains out of the network, so "
        "2pn's lack of hop-priority information stops hurting — the "
        "paper's explanation for its wormhole results."
    )


if __name__ == "__main__":
    main()
