#!/usr/bin/env python3
"""Hotspot study: how adaptivity copes with a contended lock node.

The paper motivates hotspot traffic with multiprocessors that place a
critical section's lock on one node (Figure 4).  This example compares
e-cube and the hop schemes as the hotspot fraction grows, then tries the
paper's suggested extension — spreading the hot traffic over multiple
hotspot nodes (mentioned in Section 3 but not simulated there).

Run:  python examples/hotspot_study.py
"""

import dataclasses

from repro import SimulationConfig, run_point
from repro.topology import Torus


def run(config: SimulationConfig) -> str:
    result = run_point(config)
    return (
        f"util={result.achieved_utilization:.3f} "
        f"latency={result.average_latency:7.1f}"
    )


def main() -> None:
    base = SimulationConfig(
        radix=8,
        n_dims=2,
        traffic="hotspot",
        offered_load=0.5,
        warmup_cycles=1500,
        sample_cycles=1000,
        max_samples=4,
        seed=7,
    )

    print("=== Single hotspot, growing fraction (offered load 0.5) ===")
    for fraction in (0.0, 0.04, 0.10):
        print(f"\nhotspot fraction {fraction:.0%}:")
        for algorithm in ("ecube", "2pn", "nbc"):
            config = dataclasses.replace(
                base,
                algorithm=algorithm,
                traffic_options={"fraction": fraction},
            )
            print(f"  {algorithm:>5}: {run(config)}")

    print("\n=== Spreading 8% hot traffic over 1, 2, 4 hotspot nodes ===")
    torus = Torus(base.radix, base.n_dims)
    corners = [
        torus.node((7, 7)),
        torus.node((0, 0)),
        torus.node((7, 0)),
        torus.node((0, 7)),
    ]
    for count in (1, 2, 4):
        config = dataclasses.replace(
            base,
            algorithm="nbc",
            traffic_options={
                "fraction": 0.08,
                "hotspots": corners[:count],
            },
        )
        print(f"  nbc with {count} hotspot node(s): {run(config)}")
    print(
        "\nSpreading the hot destinations over several nodes relieves the "
        "ejection bottleneck, as the paper anticipates for software "
        "combining."
    )


if __name__ == "__main__":
    main()
