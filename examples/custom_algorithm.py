#!/usr/bin/env python3
"""Extending the library: plug in your own routing algorithm.

Implements the "z-order first" toy algorithm — dimension-order routing
that corrects the *highest* dimension first instead of the lowest — by
subclassing the library's RoutingAlgorithm, registers it under a name, and
races it against the built-in e-cube.  It performs like e-cube (it is
e-cube up to dimension relabeling) which makes it a nice template: the
interesting part is the scaffolding, not the algorithm.

Run:  python examples/custom_algorithm.py
"""

from typing import Any, Hashable, List

from repro import SimulationConfig, run_point
from repro.routing.base import (
    RouteChoice,
    RoutingAlgorithm,
    dateline_vc_class,
)
from repro.routing.registry import register_algorithm
from repro.topology.base import Topology


class ReverseDimensionOrder(RoutingAlgorithm):
    """Dimension-order routing, highest dimension first.

    Deadlock-free for the same reason as e-cube: dimensions are totally
    ordered and each torus ring uses the two-class dateline scheme.
    """

    name = "zcube"
    fully_adaptive = False
    adaptive = False

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        self._has_wrap = any(link.wraps for link in topology.links)

    @property
    def num_virtual_channels(self) -> int:
        return 2 if self._has_wrap else 1

    def candidates(
        self, state: Any, current: int, dst: int
    ) -> List[RouteChoice]:
        self._check_not_delivered(current, dst)
        topo = self.topology
        for dim in reversed(range(topo.n_dims)):  # the one changed line
            directions = topo.minimal_directions(current, dst, dim)
            if not directions:
                continue
            direction = directions[0]
            if self._has_wrap:
                vc_class = dateline_vc_class(
                    topo.coords(current)[dim],
                    topo.coords(dst)[dim],
                    direction,
                )
            else:
                vc_class = 0
            return [(topo.out_link(current, dim, direction), vc_class)]
        raise AssertionError("unreachable")

    def message_class(self, src: int, dst: int, state: Any) -> Hashable:
        (link, vc_class), = self.candidates(state, src, dst)
        return (link.index, vc_class)


def main() -> None:
    register_algorithm("zcube", ReverseDimensionOrder)

    # Optional but recommended: machine-check deadlock freedom the same
    # way the library checks its own algorithms.
    from repro.analysis import build_dependency_graph, is_acyclic
    from repro.topology import Torus

    graph = build_dependency_graph(ReverseDimensionOrder(Torus(4, 2)))
    print("zcube dependency graph acyclic:", is_acyclic(graph))

    print("\nRacing zcube against ecube (8x8 torus, uniform, load 0.5):")
    for algorithm in ("ecube", "zcube"):
        config = SimulationConfig(
            radix=8,
            algorithm=algorithm,
            offered_load=0.5,
            warmup_cycles=1500,
            sample_cycles=1000,
            max_samples=4,
            seed=3,
        )
        result = run_point(config)
        print(
            f"  {algorithm:>5}: util={result.achieved_utilization:.3f} "
            f"latency={result.average_latency:.1f}"
        )
    print(
        "\nAs expected the two are statistically identical — use this "
        "file as a template for algorithms that are not."
    )


if __name__ == "__main__":
    main()
