#!/usr/bin/env python3
"""Watching congestion form: the repro.obs observability surfaces.

The paper argues (§3.4) that wormhole networks saturate when a few
blocked messages chain-lock channels across the network — a spatial
story the summary statistics can't tell.  This example runs one
moderately-loaded hotspot point twice, under deterministic e-cube and
under the fully adaptive `nbc` router, with a full observer
attached, and shows where each one hurts: the congestion heatmap around
the hotspot, the hottest blocked links, the in-flight time series, and
the engine phase timings.

Run:  python examples/observability_demo.py
"""

from repro.obs import ObsConfig, Observer
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import Engine

RADIX = 8
CYCLES = 4000
LOAD = 0.45


def observe(algorithm: str) -> Observer:
    config = SimulationConfig(
        radix=RADIX,
        n_dims=2,
        algorithm=algorithm,
        traffic="hotspot",
        offered_load=LOAD,
        seed=23,
    )
    engine = Engine(config)
    observer = Observer(ObsConfig(stride=16))
    engine.attach_observer(observer)
    engine.run_cycles(CYCLES)
    print(
        f"\n=== {algorithm}: hotspot @ {LOAD:.2f}, "
        f"{RADIX}x{RADIX} torus, {CYCLES} cycles ===\n"
    )
    print(observer.heatmap.ascii("blocked"))
    return observer


def main() -> None:
    observers = {name: observe(name) for name in ("ecube", "nbc")}

    print("\n=== side by side ===")
    for name, observer in observers.items():
        metrics = observer.metrics_summary()
        events = metrics["events"]
        flight = metrics["probes"]["in_flight_messages"]
        heat = metrics["heatmap"]
        print(
            f"  {name:>5}: delivered={events.get('msg_delivered', 0):5d}"
            f"  blocked-attempts={events.get('msg_blocked', 0):6d}"
            f"  peak in-flight={flight['max']:.0f}"
            f"  hottest blocked link={heat['hottest_blocked_link']}"
        )

    print(
        "\nThe e-cube grid concentrates blocking on the hotspot row and "
        "column\n(dimension-ordered paths all funnel through them); nbc "
        "routes around\nthe hot links, spreading the same traffic across "
        "its minimal paths.\n"
    )

    print("=== engine phase profile (nbc run) ===")
    profiler = observers["nbc"].profiler
    assert profiler is not None
    print(profiler.format_table())


if __name__ == "__main__":
    main()
