#!/usr/bin/env python3
"""Trace-driven evaluation: program communication patterns, not Poisson.

The paper's conclusion plans to evaluate the routing algorithms on
communication traces from real parallel programs.  This example builds
two synthetic program traces — a stencil solver's halo exchange and a
repeated global reduction — replays each under three routing algorithms
with blocking-send semantics, and compares *makespans* (time to finish
the whole program's communication), which is what an application
ultimately feels.

Run:  python examples/trace_replay.py
"""

from repro.experiments.trace_runner import compare_algorithms
from repro.simulator.config import SimulationConfig
from repro.topology import Torus
from repro.traffic import reduction_trace, stencil_trace

ALGORITHMS = ("ecube", "nlast", "nbc")


def show(title, results):
    print(f"\n=== {title} ===")
    best = min(results.values(), key=lambda r: r.makespan)
    for name, result in results.items():
        marker = "  <- fastest" if result is best else ""
        print(
            f"  {name:>5}: makespan={result.makespan:6d} cycles  "
            f"avg latency={result.average_latency:6.1f}  "
            f"max={result.max_latency:5d}{marker}"
        )


def main() -> None:
    torus = Torus(8, 2)
    config = SimulationConfig(
        radix=8, n_dims=2, message_length=16, seed=11
    )

    # A tight stencil: every node exchanges halos with its 4 neighbours
    # every 40 cycles, 20 iterations.
    stencil = stencil_trace(torus, iterations=20, period=40)
    show(
        f"Stencil halo exchange ({len(stencil)} messages)",
        compare_algorithms(config, stencil, ALGORITHMS),
    )

    # Global reductions to node (7,7) — all traffic converges on one
    # corner, a structured cousin of the paper's hotspot pattern.
    reduction = reduction_trace(
        torus, torus.node((7, 7)), rounds=12, period=60
    )
    show(
        f"Tree reduction to (7,7) ({len(reduction)} messages)",
        compare_algorithms(config, reduction, ALGORITHMS),
    )

    print(
        "\nNearest-neighbour traffic barely distinguishes the algorithms "
        "(minimal paths are one hop), while the reduction's convergecast "
        "rewards adaptive schemes that spread the fan-in — trace replay "
        "exposes structure that stochastic loads average away."
    )


if __name__ == "__main__":
    main()
