#!/usr/bin/env python3
"""Deadlock theory, machine-checked: dependency graphs and Lemma 1.

Walks the deadlock-freedom story of the paper's Section 2 with the
analysis toolkit:

1. builds the channel dependency graph of each algorithm on a 4x4 torus
   and reports acyclicity (Dally & Seitz's sufficient condition);
2. verifies the hop schemes' Lemma-1 rank argument exhaustively;
3. shows what *breaking* an algorithm looks like — removing the e-cube
   dateline creates a wrap-around cycle the checker finds instantly.

Run:  python examples/deadlock_analysis.py
"""

from repro.analysis import build_dependency_graph, find_cycle
from repro.analysis.invariants import check_rank_monotonicity
from repro.routing import make_algorithm
from repro.routing.ecube import ECube
from repro.topology import Torus


class EcubeWithoutDateline(ECube):
    """e-cube with the dateline removed: NOT deadlock-free on a torus."""

    name = "ecube-broken"

    @property
    def num_virtual_channels(self) -> int:
        return 1

    def candidates(self, state, current, dst):
        return [(link, 0) for link, _ in super().candidates(state, current, dst)]


def main() -> None:
    torus = Torus(4, 2)

    print("=== Channel dependency graphs on a 4x4 torus ===")
    for name in ("ecube", "nlast", "phop", "nhop", "nbc", "2pn"):
        algorithm = make_algorithm(name, torus)
        graph = build_dependency_graph(algorithm)
        cycle = find_cycle(graph)
        edge_count = sum(len(targets) for targets in graph.values())
        verdict = "acyclic" if cycle is None else "HAS MAY-WAIT CYCLES"
        print(f"  {name:>5}: {edge_count:4d} edges, {verdict}")
    print(
        "  (2pn's may-wait cycles are unrealizable under its "
        "wait-for-any semantics — see DESIGN.md; the other five are "
        "deadlock-free by graph acyclicity alone.)"
    )

    print("\n=== Lemma 1: strictly increasing ranks for the hop schemes ===")
    for name in ("phop", "nhop", "nbc"):
        scheme = make_algorithm(name, torus)
        transitions = check_rank_monotonicity(scheme)
        print(f"  {name:>5}: {transitions} hop transitions verified")

    print("\n=== Breaking e-cube: removing the dateline ===")
    broken = EcubeWithoutDateline(torus)
    cycle = find_cycle(build_dependency_graph(broken))
    assert cycle is not None
    print("  cycle found through channels:")
    for link_index, vc_class in cycle:
        link = torus.links[link_index]
        print(
            f"    link {torus.coords(link.src)} -> {torus.coords(link.dst)}"
            f" (dim {link.dim}, dir {link.direction:+d},"
            f" wrap={link.wraps}), class {vc_class}"
        )
    print(
        "  The wrap-around edges close the ring cycle the 2-class "
        "dateline scheme exists to break."
    )


if __name__ == "__main__":
    main()
