#!/usr/bin/env python3
"""Quickstart: simulate one routing algorithm at one load and read results.

Runs the paper's best all-round algorithm (nbc, negative-hop with bonus
cards) on a small torus under uniform traffic, prints the metrics the
paper reports — average message latency and normalized throughput — and
shows the route one message would take.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, Torus, make_algorithm, run_point


def main() -> None:
    # --- 1. simulate one point -----------------------------------------
    config = SimulationConfig(
        radix=8,              # 8x8 torus (the paper uses 16x16)
        n_dims=2,
        algorithm="nbc",      # negative-hop with bonus cards
        traffic="uniform",
        offered_load=0.4,     # fraction of raw channel bandwidth
        message_length=16,    # flits per worm, as in the paper
        warmup_cycles=1500,
        sample_cycles=1000,
        seed=1,
    )
    result = run_point(config)

    print("Simulation of", config.label())
    print(f"  average latency        : {result.average_latency:.1f} cycles "
          f"(+/- {result.latency_error_bound:.1f})")
    print(f"  normalized throughput  : {result.achieved_utilization:.3f}")
    print(f"  messages delivered     : {result.messages_delivered}")
    print(f"  converged              : {result.converged} "
          f"({result.samples_used} samples)")

    # --- 2. inspect the routing algorithm directly ---------------------
    torus = Torus(8, 2)
    algorithm = make_algorithm("nbc", torus)
    print("\nAlgorithm:", algorithm.describe())

    src, dst = torus.node((1, 1)), torus.node((3, 2))
    state = algorithm.new_state(src, dst)
    print(f"Routing {torus.coords(src)} -> {torus.coords(dst)}:")
    node = src
    while node != dst:
        choices = algorithm.candidates(state, node, dst)
        link, vc_class = choices[0]  # a router would pick the least busy
        print(
            f"  at {torus.coords(node)}: {len(choices)} candidate(s); "
            f"take dim {link.dim} dir {link.direction:+d} "
            f"on virtual channel class {vc_class}"
        )
        state = algorithm.advance(state, node, link, vc_class)
        node = link.dst
    print(f"  arrived at {torus.coords(dst)}")


if __name__ == "__main__":
    main()
