#!/usr/bin/env python3
"""Documented reduced-budget 16x16 run behind EXPERIMENTS.md §PAPER-16².

The paper's network at the paper's message length, with a reduced load
ladder and sample budget (3 samples of 1200 cycles after a 3000-cycle
warm-up) so the run finishes in tens of minutes on one core.  Full-budget
equivalents: ``REPRO_PROFILE=paper repro-sweep --figure 3``.
"""

import dataclasses
import sys

from repro.experiments.paper_figures import check_figure3
from repro.experiments.sweep import sweep_algorithms
from repro.experiments.tables import (
    format_figure,
    peak_summary,
    write_csv,
)
from repro.experiments.paper_figures import format_checks
from repro.routing.registry import ALGORITHM_NAMES
from repro.simulator.config import SimulationConfig

LOADS = (0.2, 0.4, 0.7, 1.0)


def main() -> int:
    config = SimulationConfig(
        radix=16,
        n_dims=2,
        traffic="uniform",
        message_length=16,
        warmup_cycles=3000,
        sample_cycles=1200,
        gap_cycles=240,
        min_samples=3,
        max_samples=3,
        seed=1,
    )
    series = sweep_algorithms(
        config, ALGORITHM_NAMES, LOADS, verbose=True
    )
    print(format_figure(series, "Figure 3 on the paper's 16x16 torus "
                                "(reduced sample budget)"))
    print()
    print(peak_summary(series))
    checks = check_figure3(series)
    print()
    print(format_checks(checks))
    with open("results/fig3_paper16_reduced.csv", "w", newline="") as f:
        write_csv(series, f)
    return 0 if all(ok for _, ok in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
